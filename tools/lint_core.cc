#include "lint_core.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace schedtask::lint
{

std::string
Diag::str() const
{
    std::ostringstream os;
    os << file << ":" << line << ": [" << rule << "] " << message;
    return os.str();
}

namespace
{

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/**
 * Comment- and string-free view of the source. Literals are blanked
 * with spaces so byte offsets and line numbers survive, which lets
 * test fixtures embed rule violations inside raw strings without
 * tripping the linter on the test file itself.
 */
struct Scrubbed
{
    std::string text;
    /** line -> rules allowed there via lint:allow pragmas. */
    std::map<int, std::set<std::string>> allows;
    /** Malformed pragmas (LINT-00), reported unconditionally. */
    std::vector<Diag> pragmaDiags;
};

void
parsePragmas(const std::string &comment, int start_line,
             const std::string &file, Scrubbed &out)
{
    static const std::string kKey = "lint:allow(";
    std::size_t from = 0;
    while (true) {
        const std::size_t at = comment.find(kKey, from);
        if (at == std::string::npos)
            return;
        int line = start_line;
        for (std::size_t i = 0; i < at; ++i)
            if (comment[i] == '\n')
                ++line;
        const std::size_t rule_beg = at + kKey.size();
        const std::size_t rule_end = comment.find(')', rule_beg);
        if (rule_end == std::string::npos)
            return;
        const std::string rule =
            comment.substr(rule_beg, rule_end - rule_beg);
        std::size_t reason_end = comment.find('\n', rule_end);
        if (reason_end == std::string::npos)
            reason_end = comment.size();
        std::string reason =
            comment.substr(rule_end + 1, reason_end - rule_end - 1);
        // Strip whitespace and a trailing block-comment close.
        while (!reason.empty() && (reason.back() == '/'
                                   || reason.back() == '*'
                                   || std::isspace(static_cast<unsigned
                                          char>(reason.back())))) {
            reason.pop_back();
        }
        while (!reason.empty()
               && std::isspace(static_cast<unsigned char>(
                      reason.front()))) {
            reason.erase(reason.begin());
        }
        if (reason.empty()) {
            out.pragmaDiags.push_back(Diag{
                file, line, "LINT-00",
                "lint:allow(" + rule
                    + ") needs a reason after the closing paren"});
        } else {
            // The pragma covers its own line and the next one, so it
            // can sit on the offending line or on the line above.
            out.allows[line].insert(rule);
            out.allows[line + 1].insert(rule);
        }
        from = rule_end;
    }
}

Scrubbed
scrub(const std::string &src, const std::string &file)
{
    Scrubbed out;
    out.text.reserve(src.size());
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto put = [&](char c) {
        if (c == '\n') {
            ++line;
            out.text.push_back('\n');
        } else {
            out.text.push_back(c);
        }
    };
    auto blank = [&](char c) { put(c == '\n' ? '\n' : ' '); };

    while (i < n) {
        const char c = src[i];
        const char next = i + 1 < n ? src[i + 1] : '\0';
        if (c == '/' && next == '/') {
            const std::size_t end = src.find('\n', i);
            const std::size_t stop = end == std::string::npos ? n : end;
            parsePragmas(src.substr(i, stop - i), line, file, out);
            while (i < stop)
                blank(src[i++]);
        } else if (c == '/' && next == '*') {
            std::size_t end = src.find("*/", i + 2);
            const std::size_t stop =
                end == std::string::npos ? n : end + 2;
            parsePragmas(src.substr(i, stop - i), line, file, out);
            while (i < stop)
                blank(src[i++]);
        } else if (c == 'R' && next == '"'
                   && (i == 0 || !isIdentChar(src[i - 1]))) {
            // Raw string literal: R"delim( ... )delim"
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && src[p] != '(')
                delim.push_back(src[p++]);
            const std::string close = ")" + delim + "\"";
            std::size_t end = src.find(close, p);
            const std::size_t stop =
                end == std::string::npos ? n : end + close.size();
            while (i < stop)
                blank(src[i++]);
        } else if (c == '"' || c == '\'') {
            const char quote = c;
            blank(src[i++]);
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n) {
                    blank(src[i++]);
                    blank(src[i++]);
                } else if (src[i] == quote) {
                    blank(src[i++]);
                    break;
                } else if (src[i] == '\n') {
                    break; // unterminated; keep line counts sane
                } else {
                    blank(src[i++]);
                }
            }
        } else {
            put(src[i++]);
        }
    }
    return out;
}

struct Tok
{
    std::string text;
    std::size_t pos = 0;
    std::size_t end = 0;
    int line = 0;
};

std::vector<Tok>
tokenize(const std::string &s)
{
    std::vector<Tok> toks;
    int line = 1;
    for (std::size_t i = 0; i < s.size();) {
        if (s[i] == '\n') {
            ++line;
            ++i;
        } else if (isIdentChar(s[i])
                   && std::isdigit(static_cast<unsigned char>(s[i]))
                          == 0) {
            std::size_t j = i;
            while (j < s.size() && isIdentChar(s[j]))
                ++j;
            toks.push_back(Tok{s.substr(i, j - i), i, j, line});
            i = j;
        } else {
            ++i;
        }
    }
    return toks;
}

char
prevNonSpace(const std::string &s, std::size_t pos)
{
    while (pos > 0) {
        --pos;
        if (std::isspace(static_cast<unsigned char>(s[pos])) == 0)
            return s[pos];
    }
    return '\0';
}

char
nextNonSpace(const std::string &s, std::size_t pos)
{
    while (pos < s.size()) {
        if (std::isspace(static_cast<unsigned char>(s[pos])) == 0)
            return s[pos];
        ++pos;
    }
    return '\0';
}

/**
 * If the token at `pos` is preceded by `::`, return the qualifying
 * identifier ("" for the global `::name`). Returns "<none>" when the
 * token is unqualified.
 */
std::string
qualifierBefore(const std::string &s, std::size_t pos)
{
    std::size_t p = pos;
    while (p > 0
           && std::isspace(static_cast<unsigned char>(s[p - 1])) != 0)
        --p;
    if (p < 2 || s[p - 1] != ':' || s[p - 2] != ':')
        return "<none>";
    p -= 2;
    while (p > 0
           && std::isspace(static_cast<unsigned char>(s[p - 1])) != 0)
        --p;
    std::size_t q = p;
    while (q > 0 && isIdentChar(s[q - 1]))
        --q;
    return s.substr(q, p - q);
}

/** Skip a balanced <...> starting at `pos` (s[pos] == '<'). */
std::size_t
skipAngles(const std::string &s, std::size_t pos)
{
    int depth = 0;
    while (pos < s.size()) {
        if (s[pos] == '<')
            ++depth;
        else if (s[pos] == '>')
            --depth;
        else if (s[pos] == ';')
            return pos; // runaway (comparison, not template)
        ++pos;
        if (depth == 0)
            return pos;
    }
    return pos;
}

/** Read the identifier that names a declared variable/function after
 *  a container type ends at `pos` (skipping `&`, `*`, whitespace). */
std::string
declaredNameAfter(const std::string &s, std::size_t pos)
{
    while (pos < s.size()
           && (std::isspace(static_cast<unsigned char>(s[pos])) != 0
               || s[pos] == '&' || s[pos] == '*'))
        ++pos;
    std::size_t j = pos;
    while (j < s.size() && isIdentChar(s[j]))
        ++j;
    return s.substr(pos, j - pos);
}

const std::set<std::string> &
det01AlwaysBad()
{
    static const std::set<std::string> kBad = {
        "rand", "srand", "drand48", "random_device", "mt19937",
        "mt19937_64", "default_random_engine", "gettimeofday",
        "clock_gettime", "system_clock", "steady_clock",
        "high_resolution_clock",
    };
    return kBad;
}

const std::set<std::string> &
safe01Bad()
{
    static const std::set<std::string> kBad = {
        "atoi", "atof", "atol", "atoll", "strtol", "strtoul",
        "strtoll", "strtoull", "strtof", "strtod", "strtold",
    };
    return kBad;
}

const std::set<std::string> &
unorderedTypes()
{
    static const std::set<std::string> kTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };
    return kTypes;
}

const std::set<std::string> &
orderedTypes()
{
    static const std::set<std::string> kTypes = {
        "map", "set", "multimap", "multiset",
    };
    return kTypes;
}

bool
det02Applies(const std::string &rel_path)
{
    if (startsWith(rel_path, "src/stats/"))
        return true;
    const std::string base = baseName(rel_path);
    return startsWith(base, "trace_export")
           || startsWith(base, "reporting")
           || startsWith(base, "visualize");
}

std::string
expectedGuard(const std::string &rel_path)
{
    std::string p = rel_path;
    if (startsWith(p, "src/"))
        p.erase(0, 4);
    std::string guard = "SCHEDTASK_";
    for (char c : p) {
        if (std::isalnum(static_cast<unsigned char>(c)) != 0)
            guard.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
        else
            guard.push_back('_');
    }
    return guard;
}

void
checkDet01(const std::string &rel_path, const Scrubbed &sc,
           const std::vector<Tok> &toks, std::vector<Diag> &diags)
{
    if (startsWith(rel_path, "src/common/random."))
        return;
    for (const Tok &t : toks) {
        bool bad = false;
        std::string what;
        if (det01AlwaysBad().count(t.text) != 0) {
            bad = true;
            what = t.text;
        } else if (t.text == "time" || t.text == "clock") {
            if (nextNonSpace(sc.text, t.end) != '(')
                continue;
            const char prev = prevNonSpace(sc.text, t.pos);
            if (prev == '.' || prev == '>')
                continue; // member access, not libc
            const std::string qual = qualifierBefore(sc.text, t.pos);
            if (t.text == "clock") {
                // Bare `clock(` is almost always a local accessor
                // (Core::clock()); only the std/global form is libc.
                bad = qual == "std" || qual.empty();
            } else {
                bad = qual == "<none>" || qual == "std"
                      || qual.empty();
            }
            what = t.text + "()";
        }
        if (bad) {
            diags.push_back(Diag{
                rel_path, t.line, "DET-01",
                "non-deterministic source '" + what
                    + "'; use schedtask::Rng (common/random.hh) or a "
                      "simulated clock"});
        }
    }
}

void
checkSafe01(const std::string &rel_path, const Scrubbed &sc,
            const std::vector<Tok> &toks, std::vector<Diag> &diags)
{
    if (startsWith(rel_path, "src/common/parse_num."))
        return;
    for (const Tok &t : toks) {
        if (safe01Bad().count(t.text) == 0)
            continue;
        if (nextNonSpace(sc.text, t.end) != '(')
            continue;
        if (prevNonSpace(sc.text, t.pos) == '.'
            || prevNonSpace(sc.text, t.pos) == '>')
            continue;
        diags.push_back(Diag{
            rel_path, t.line, "SAFE-01",
            "'" + t.text
                + "' parses garbage silently; use "
                  "schedtask::parseUnsigned / parseDouble "
                  "(common/parse_num.hh)"});
    }
}

void
checkSafe02(const std::string &rel_path, const Scrubbed &sc,
            const std::vector<Tok> &toks, std::vector<Diag> &diags)
{
    if (!startsWith(rel_path, "src/common/logging.")) {
        for (const Tok &t : toks) {
            if (t.text != "abort")
                continue;
            if (nextNonSpace(sc.text, t.end) != '(')
                continue;
            const char prev = prevNonSpace(sc.text, t.pos);
            if (prev == '.' || prev == '>')
                continue;
            const std::string qual = qualifierBefore(sc.text, t.pos);
            if (qual != "<none>" && qual != "std" && !qual.empty())
                continue;
            diags.push_back(Diag{
                rel_path, t.line, "SAFE-02",
                "call SCHEDTASK_PANIC instead of abort() so the "
                "failure is logged with context"});
        }
    }
    // Redundant `virtual` on an `override` declaration, line-scoped.
    std::istringstream lines(sc.text);
    std::string ln;
    int line_no = 0;
    auto hasWord = [](const std::string &s, const std::string &w) {
        std::size_t at = 0;
        while ((at = s.find(w, at)) != std::string::npos) {
            const bool left = at == 0 || !isIdentChar(s[at - 1]);
            const std::size_t after = at + w.size();
            const bool right =
                after >= s.size() || !isIdentChar(s[after]);
            if (left && right)
                return true;
            at = after;
        }
        return false;
    };
    while (std::getline(lines, ln)) {
        ++line_no;
        if (hasWord(ln, "virtual") && hasWord(ln, "override")) {
            diags.push_back(Diag{
                rel_path, line_no, "SAFE-02",
                "redundant 'virtual' on an override declaration; "
                "keep only 'override'"});
        }
    }
}

void
checkDet02(const std::string &rel_path, const Scrubbed &sc,
           const std::vector<Tok> &toks, std::vector<Diag> &diags)
{
    if (!det02Applies(rel_path))
        return;

    // Names declared with an unordered type (variables, or functions
    // returning one — `rows()` in stats_table.hh is the archetype),
    // and names that are provably sorted sinks (ordered containers,
    // or the target of a std::sort call anywhere in the file).
    std::set<std::string> unordered_names;
    std::set<std::string> sorted_names;
    for (const Tok &t : toks) {
        if (unorderedTypes().count(t.text) != 0) {
            std::size_t p = t.end;
            if (nextNonSpace(sc.text, p) == '<')
                p = skipAngles(sc.text,
                               sc.text.find('<', p));
            const std::string name = declaredNameAfter(sc.text, p);
            if (!name.empty())
                unordered_names.insert(name);
        } else if (orderedTypes().count(t.text) != 0
                   && qualifierBefore(sc.text, t.pos) == "std") {
            std::size_t p = t.end;
            if (nextNonSpace(sc.text, p) == '<')
                p = skipAngles(sc.text,
                               sc.text.find('<', p));
            const std::string name = declaredNameAfter(sc.text, p);
            if (!name.empty())
                sorted_names.insert(name);
        } else if ((t.text == "sort" || t.text == "stable_sort")
                   && nextNonSpace(sc.text, t.end) == '(') {
            const std::size_t open = sc.text.find('(', t.end);
            const std::string arg =
                declaredNameAfter(sc.text, open + 1);
            if (!arg.empty())
                sorted_names.insert(arg);
        }
    }

    auto containsUnordered = [&](const std::string &text) {
        if (text.find("unordered_") != std::string::npos)
            return true;
        for (const Tok &t : tokenize(text))
            if (unordered_names.count(t.text) != 0)
                return true;
        return false;
    };
    auto feedsSortedSink = [&](const std::string &body) {
        for (const Tok &t : tokenize(body))
            if (sorted_names.count(t.text) != 0)
                return true;
        return false;
    };

    for (std::size_t ti = 0; ti < toks.size(); ++ti) {
        if (toks[ti].text != "for")
            continue;
        const Tok &t = toks[ti];
        if (nextNonSpace(sc.text, t.end) != '(')
            continue;
        const std::size_t open = sc.text.find('(', t.end);
        int depth = 0;
        std::size_t close = open;
        std::size_t colon = std::string::npos;
        for (std::size_t p = open; p < sc.text.size(); ++p) {
            if (sc.text[p] == '(')
                ++depth;
            else if (sc.text[p] == ')') {
                --depth;
                if (depth == 0) {
                    close = p;
                    break;
                }
            } else if (sc.text[p] == ':' && depth == 1
                       && colon == std::string::npos) {
                const bool dbl =
                    (p + 1 < sc.text.size() && sc.text[p + 1] == ':')
                    || (p > 0 && sc.text[p - 1] == ':');
                if (!dbl)
                    colon = p;
            }
        }
        if (close == open)
            continue;
        const std::string header =
            sc.text.substr(open + 1, close - open - 1);

        bool suspect = false;
        if (colon != std::string::npos) {
            const std::string range =
                sc.text.substr(colon + 1, close - colon - 1);
            suspect = containsUnordered(range);
        } else {
            // Classic iterator loop: `for (auto it = m.begin(); ...`.
            suspect = header.find("begin") != std::string::npos
                      && containsUnordered(header);
        }
        if (!suspect)
            continue;

        // Extract the loop body (brace block or single statement).
        std::size_t b = close + 1;
        while (b < sc.text.size()
               && std::isspace(static_cast<unsigned char>(
                      sc.text[b])) != 0)
            ++b;
        std::string body;
        if (b < sc.text.size() && sc.text[b] == '{') {
            int bd = 0;
            std::size_t e = b;
            for (; e < sc.text.size(); ++e) {
                if (sc.text[e] == '{')
                    ++bd;
                else if (sc.text[e] == '}') {
                    --bd;
                    if (bd == 0)
                        break;
                }
            }
            body = sc.text.substr(b, e - b + 1);
        } else {
            const std::size_t e = sc.text.find(';', b);
            body = sc.text.substr(
                b, e == std::string::npos ? std::string::npos
                                          : e - b + 1);
        }
        if (feedsSortedSink(body))
            continue;

        diags.push_back(Diag{
            rel_path, t.line, "DET-02",
            "iteration over an unordered container in an "
            "output-writing file; sort the keys first or feed a "
            "sorted container"});
    }
}

void
checkSty01(const std::string &rel_path, const Scrubbed &sc,
           std::vector<Diag> &diags)
{
    if (rel_path.size() < 3
        || rel_path.compare(rel_path.size() - 3, 3, ".hh") != 0)
        return;
    const std::string guard = expectedGuard(rel_path);
    const std::size_t ifndef = sc.text.find("#ifndef");
    if (ifndef == std::string::npos) {
        diags.push_back(Diag{rel_path, 1, "STY-01",
                             "missing include guard #ifndef " + guard});
        return;
    }
    int line = 1;
    for (std::size_t i = 0; i < ifndef; ++i)
        if (sc.text[i] == '\n')
            ++line;
    const std::string actual =
        declaredNameAfter(sc.text, ifndef + 7);
    if (actual != guard) {
        diags.push_back(Diag{rel_path, line, "STY-01",
                             "include guard '" + actual
                                 + "' should be '" + guard + "'"});
        return;
    }
    if (sc.text.find("#define " + guard) == std::string::npos) {
        diags.push_back(Diag{rel_path, line, "STY-01",
                             "include guard '" + guard
                                 + "' is never #defined"});
    }
}

void
checkReg01(const std::string &rel_path, const Scrubbed &sc,
           const std::vector<Tok> &toks, std::vector<Diag> &diags)
{
    // experiment.cc is the one sanctioned enum <-> registry shim.
    if (rel_path == "src/harness/experiment.cc")
        return;
    for (const Tok &t : toks) {
        if (t.text != "switch")
            continue;
        if (nextNonSpace(sc.text, t.end) != '(')
            continue;
        const std::size_t open = sc.text.find('(', t.end);
        int depth = 0;
        std::size_t close = open;
        for (std::size_t p = open; p < sc.text.size(); ++p) {
            if (sc.text[p] == '(')
                ++depth;
            else if (sc.text[p] == ')') {
                --depth;
                if (depth == 0) {
                    close = p;
                    break;
                }
            }
        }
        if (close == open)
            continue;
        const std::string cond =
            sc.text.substr(open + 1, close - open - 1);
        for (const Tok &ct : tokenize(cond)) {
            if (ct.text == "Technique" || ct.text == "technique") {
                diags.push_back(Diag{
                    rel_path, t.line, "REG-01",
                    "switch over a Technique outside the "
                    "harness/experiment.cc shim; dispatch through "
                    "the SchedulerRegistry by name instead"});
                break;
            }
        }
    }
}

void
checkSimd01(const std::string &rel_path, const std::vector<Tok> &toks,
            std::vector<Diag> &diags)
{
    // src/common/simd.hh is the one sanctioned home for vector
    // intrinsics: the scalar/SIMD bit-equivalence is only auditable
    // (and testable, tests/test_simd.cc) while the ISA-specific
    // surface stays in a single file.
    if (rel_path == "src/common/simd.hh")
        return;
    for (const Tok &t : toks) {
        const std::string &s = t.text;
        const bool intrinsic = startsWith(s, "_mm_")
            || startsWith(s, "_mm256_") || startsWith(s, "_mm512_")
            || startsWith(s, "__m128") || startsWith(s, "__m256")
            || startsWith(s, "__m512") || s == "immintrin"
            || startsWith(s, "__AVX") || startsWith(s, "__SSE");
        if (!intrinsic)
            continue;
        diags.push_back(Diag{
            rel_path, t.line, "SIMD-01",
            "vector intrinsic or ISA feature macro '" + s
                + "' outside src/common/simd.hh; add a kernel to "
                  "the simd layer instead"});
    }
}

} // namespace

std::vector<Diag>
lintSource(const std::string &rel_path, const std::string &content)
{
    const Scrubbed sc = scrub(content, rel_path);
    const std::vector<Tok> toks = tokenize(sc.text);

    std::vector<Diag> raw;
    checkDet01(rel_path, sc, toks, raw);
    checkDet02(rel_path, sc, toks, raw);
    checkSafe01(rel_path, sc, toks, raw);
    checkSafe02(rel_path, sc, toks, raw);
    checkSty01(rel_path, sc, raw);
    checkReg01(rel_path, sc, toks, raw);
    checkSimd01(rel_path, toks, raw);

    std::vector<Diag> diags = sc.pragmaDiags;
    for (Diag &d : raw) {
        const auto it = sc.allows.find(d.line);
        if (it != sc.allows.end() && it->second.count(d.rule) != 0)
            continue;
        diags.push_back(std::move(d));
    }
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diag &a, const Diag &b) {
                         return a.line < b.line;
                     });
    return diags;
}

int
runLint(const std::vector<std::string> &args, std::ostream &out,
        std::ostream &err)
{
    namespace fs = std::filesystem;

    std::string root;
    std::vector<std::string> files;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--root") {
            if (i + 1 >= args.size()) {
                err << "schedtask_lint: --root needs a directory\n";
                return 2;
            }
            root = args[++i];
        } else if (startsWith(args[i], "--")) {
            err << "schedtask_lint: unknown option " << args[i]
                << "\n"
                << "usage: schedtask_lint --root DIR | FILE...\n";
            return 2;
        } else {
            files.push_back(args[i]);
        }
    }

    if (!root.empty() && files.empty()) {
        static const std::array<const char *, 4> kSubdirs = {
            "src", "bench", "tools", "tests"};
        for (const char *sub : kSubdirs) {
            const fs::path dir = fs::path(root) / sub;
            std::error_code ec;
            if (!fs::is_directory(dir, ec))
                continue;
            for (const auto &entry :
                 fs::recursive_directory_iterator(dir)) {
                if (!entry.is_regular_file())
                    continue;
                const std::string ext =
                    entry.path().extension().string();
                if (ext == ".cc" || ext == ".hh")
                    files.push_back(entry.path().string());
            }
        }
        std::sort(files.begin(), files.end());
    }
    if (files.empty()) {
        err << "usage: schedtask_lint --root DIR | FILE...\n";
        return 2;
    }

    std::size_t total = 0;
    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            err << "schedtask_lint: cannot read " << file << "\n";
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();

        std::string rel = file;
        if (!root.empty()) {
            std::error_code ec;
            const fs::path r =
                fs::relative(fs::path(file), fs::path(root), ec);
            if (!ec && !r.empty() && r.generic_string()[0] != '.')
                rel = r.generic_string();
        }
        for (const Diag &d : lintSource(rel, buf.str())) {
            out << d.str() << "\n";
            ++total;
        }
    }
    if (total != 0) {
        err << "schedtask_lint: " << total << " finding(s) in "
            << files.size() << " file(s)\n";
        return 1;
    }
    return 0;
}

} // namespace schedtask::lint
