/**
 * @file
 * schedtask-sim: command-line front end to the simulator.
 *
 * Runs one benchmark under one scheduling technique and prints the
 * headline metrics, optionally a full gem5-style stats dump and a
 * SuperFunction trace excerpt.
 *
 * Usage:
 *   schedtask-sim [options]
 *     --benchmark NAME   Find|Iscp|Oscp|Apache|DSS|FileSrv|
 *                        MailSrvIO|OLTP (default Apache)
 *     --bag NAME         run a multi-programmed bag (MPW-A..MPW-F)
 *                        instead of a single benchmark
 *     --technique NAME   Linux|SelectiveOffload|FlexSC|
 *                        DisAggregateOS|SLICC|SchedTask
 *                        (default SchedTask)
 *     --cores N          baseline cores (default 32)
 *     --scale X          workload scale (default 2.0)
 *     --warmup N         warmup epochs (default 4)
 *     --measure N        measured epochs (default 6)
 *     --heatmap-bits N   Page-heatmap width (default 512)
 *     --steal POLICY     none|same|similar|busiest (default similar)
 *     --seed N           master seed (default 1)
 *     --jobs N           worker threads for --compare (default:
 *                        SCHEDTASK_JOBS or the hardware concurrency)
 *     --stats            print the full stats dump
 *     --json             print the stats dump as JSON
 *     --viz              print per-core utilization bars and
 *                        (SchedTask) the allocation table
 *     --trace [TID]      print a SuperFunction trace excerpt
 *     --compare          also run the Linux baseline and print deltas
 *     --help
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/schedtask_sched.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep.hh"
#include "harness/visualize.hh"
#include "sim/machine.hh"
#include "sim/sf_trace.hh"
#include "stats/stat_set.hh"
#include "stats/table.hh"

using namespace schedtask;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "schedtask-sim: run one benchmark under one scheduling "
        "technique\n\n"
        "  --benchmark NAME   one of the 8 paper benchmarks "
        "(default Apache)\n"
        "  --bag NAME         multi-programmed bag MPW-A..MPW-F\n"
        "  --technique NAME   Linux|SelectiveOffload|FlexSC|"
        "DisAggregateOS|SLICC|SchedTask\n"
        "  --cores N          baseline cores (default 32)\n"
        "  --scale X          workload scale (default 2.0)\n"
        "  --warmup N         warmup epochs (default 4)\n"
        "  --measure N        measured epochs (default 6)\n"
        "  --heatmap-bits N   Page-heatmap width (default 512)\n"
        "  --steal POLICY     none|same|similar|busiest\n"
        "  --seed N           master seed (default 1)\n"
        "  --jobs N           worker threads for --compare (default:\n"
        "                     SCHEDTASK_JOBS or the hardware "
        "concurrency)\n"
        "  --stats            print the full stats dump\n"
        "  --json             print the stats dump as JSON\n"
        "  --viz              print per-core utilization bars and\n"
        "                     (SchedTask) the allocation table\n"
        "  --trace [TID]      print a SuperFunction trace excerpt\n"
        "  --compare          also run the Linux baseline\n");
    std::exit(code);
}

Technique
parseTechnique(const std::string &name)
{
    for (Technique t :
         {Technique::Linux, Technique::SelectiveOffload,
          Technique::FlexSC, Technique::DisAggregateOS,
          Technique::SLICC, Technique::SchedTask}) {
        if (name == techniqueName(t))
            return t;
    }
    std::fprintf(stderr, "unknown technique: %s\n", name.c_str());
    std::exit(2);
}

/** The headline-metrics table shared by both run paths. */
TextTable
headlineTable(const SimMetrics &m, unsigned num_cores,
              unsigned num_threads, double freq_ghz)
{
    TextTable table({"metric", "value"});
    table.addRow({"cores", std::to_string(num_cores)});
    table.addRow({"threads", std::to_string(num_threads)});
    table.addRow({"IPC/core", TextTable::num(m.ipc(num_cores), 3)});
    table.addRow({"Ginsts/s",
                  TextTable::num(m.instThroughput(freq_ghz) / 1e9,
                                 2)});
    table.addRow({"app events/s (x1e6)",
                  TextTable::num(
                      m.appEventsPerSecond(freq_ghz) / 1e6, 2)});
    table.addRow({"idle (%)",
                  TextTable::num(m.idleFraction(num_cores) * 100.0)});
    table.addRow({"migrations/1e9 insts",
                  TextTable::num(
                      m.instsRetired == 0
                          ? 0.0
                          : 1e9 * static_cast<double>(m.migrations)
                              / static_cast<double>(m.instsRetired),
                      0)});
    return table;
}

StealPolicy
parseSteal(const std::string &name)
{
    if (name == "none")
        return StealPolicy::None;
    if (name == "same")
        return StealPolicy::SameOnly;
    if (name == "similar")
        return StealPolicy::SameAndSimilar;
    if (name == "busiest")
        return StealPolicy::BusiestFirst;
    std::fprintf(stderr, "unknown steal policy: %s\n", name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string benchmark = "Apache";
    std::optional<std::string> bag;
    Technique technique = Technique::SchedTask;
    unsigned cores = 32;
    double scale = 2.0;
    unsigned warmup = 4, measure = 6;
    unsigned heatmap_bits = 512;
    StealPolicy steal = StealPolicy::SameAndSimilar;
    std::uint64_t seed = 1;
    unsigned jobs = 0;
    bool want_stats = false, want_compare = false;
    bool want_json = false, want_viz = false;
    std::optional<ThreadId> trace_tid;
    bool want_trace = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--benchmark") {
            benchmark = next();
        } else if (arg == "--bag") {
            bag = next();
        } else if (arg == "--technique") {
            technique = parseTechnique(next());
        } else if (arg == "--cores") {
            cores = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--scale") {
            scale = std::atof(next());
        } else if (arg == "--warmup") {
            warmup = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--measure") {
            measure = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--heatmap-bits") {
            heatmap_bits = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--steal") {
            steal = parseSteal(next());
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--json") {
            want_json = true;
        } else if (arg == "--viz") {
            want_viz = true;
        } else if (arg == "--compare") {
            want_compare = true;
        } else if (arg == "--trace") {
            want_trace = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                trace_tid = static_cast<ThreadId>(
                    std::atoi(argv[++i]));
            }
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(2);
        }
    }

    ExperimentConfig cfg;
    cfg.parts = bag ? Workload::bagParts(*bag)
                    : std::vector<WorkloadPart>{{benchmark, scale}};
    cfg.baselineCores = cores;
    cfg.warmupEpochs = warmup;
    cfg.measureEpochs = measure;
    cfg.machine.heatmapBits = heatmap_bits;
    cfg.machine.seed = seed;
    cfg.schedTask.stealPolicy = steal;

    const std::string run_name(techniqueName(technique));
    const std::string title =
        run_name + " on " + (bag ? *bag : benchmark);
    const bool needs_machine =
        want_stats || want_json || want_viz || want_trace;

    if (!needs_machine) {
        // No stats/viz/trace attachments requested: go through the
        // sweep API, so --compare runs the Linux baseline and the
        // technique on concurrent worker threads (--jobs or
        // SCHEDTASK_JOBS; both runs still see --seed verbatim).
        Sweep sweep;
        sweep.deriveSeeds(false);
        if (want_compare && technique != Technique::Linux)
            sweep.addComparison("run", run_name, cfg, technique);
        else
            sweep.add("run", run_name, cfg, technique);
        SweepOptions opts;
        opts.jobs = jobs;
        opts.progress = false;
        const SweepResults results = SweepRunner(opts).run(sweep);
        const RunResult &r = results.at("run", run_name);

        printHeader(title);
        std::printf("%s\n",
                    headlineTable(r.metrics, r.numCores,
                                  r.numThreads, r.freqGhz)
                        .render()
                        .c_str());
        if (want_compare && technique != Technique::Linux) {
            const RunResult &base =
                results.at(baselineLabelFor("run", cfg));
            std::printf("vs Linux baseline: throughput %+0.1f%%, "
                        "app performance %+0.1f%%\n\n",
                        percentChange(base.instThroughput(),
                                      r.instThroughput()),
                        percentChange(base.appPerformance(),
                                      r.appPerformance()));
        }
        return 0;
    }

    // Build the run by hand so stats/trace can be attached.
    BenchmarkSuite suite;
    Workload workload =
        Workload::build(suite, cfg.parts, cfg.baselineCores);
    auto sched = makeScheduler(technique, cfg.schedTask);
    MachineParams mp = cfg.machine;
    mp.numCores = sched->coresRequired(cfg.baselineCores);
    Machine machine(mp, cfg.hierarchy, suite, workload, *sched);

    machine.run(static_cast<Cycles>(warmup) * mp.epochCycles);
    machine.resetStats();
    SfTracer tracer(1 << 18);
    if (want_trace)
        machine.attachTracer(&tracer);
    machine.run(static_cast<Cycles>(measure) * mp.epochCycles);

    const SimMetrics m = machine.metricsSnapshot();
    printHeader(title);
    std::printf("%s\n",
                headlineTable(
                    m, mp.numCores,
                    static_cast<unsigned>(machine.threads().size()),
                    mp.coreFrequencyGHz)
                    .render()
                    .c_str());

    if (want_compare && technique != Technique::Linux) {
        const RunResult base = runOnce(cfg, Technique::Linux);
        const double dthr = percentChange(
            base.instThroughput(),
            m.instThroughput(mp.coreFrequencyGHz));
        const double dapp = percentChange(
            base.appPerformance(),
            m.appEventsPerSecond(mp.coreFrequencyGHz));
        std::printf("vs Linux baseline: throughput %+0.1f%%, "
                    "app performance %+0.1f%%\n\n",
                    dthr, dapp);
    }

    if (want_stats || want_json) {
        StatSet stats;
        machine.exportStats(stats);
        if (want_stats)
            std::printf("%s\n", stats.dump().c_str());
        if (want_json)
            std::printf("%s", stats.dumpJson().c_str());
    }

    if (want_viz) {
        std::printf("%s\n",
                    utilizationBars(m, mp.numCores).c_str());
        if (const auto *st =
                dynamic_cast<const SchedTaskScheduler *>(
                    sched.get())) {
            std::printf("allocation table:\n%s\n",
                        allocationView(*st).c_str());
        }
    }

    if (want_trace) {
        std::printf("%s\n",
                    tracer
                        .render(trace_tid.value_or(invalidThread),
                                60)
                        .c_str());
    }
    return 0;
}
