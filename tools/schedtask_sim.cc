/**
 * @file
 * schedtask-sim: command-line front end to the simulator.
 *
 * Runs one benchmark under one scheduling technique and prints the
 * headline metrics, optionally a full gem5-style stats dump, epoch
 * telemetry exports and a SuperFunction trace excerpt.
 *
 * Usage:
 *   schedtask-sim [options]
 *     --benchmark NAME   Find|Iscp|Oscp|Apache|DSS|FileSrv|
 *                        MailSrvIO|OLTP (default Apache)
 *     --bag NAME         run a multi-programmed bag (MPW-A..MPW-F)
 *                        instead of a single benchmark
 *     --technique SPEC   NAME[:key=val,...] — any technique in the
 *                        scheduler registry, with per-technique
 *                        options (default SchedTask); see
 *                        --list-techniques
 *     --list-techniques  print registered techniques and their
 *                        option keys, sorted, and exit
 *     --cores N          baseline cores (default 32)
 *     --scale X          workload scale (default 2.0)
 *     --warmup N         warmup epochs (default 4)
 *     --measure N        measured epochs (default 6)
 *     --fast             shortcut for --warmup 1 --measure 2
 *     --heatmap-bits N   Page-heatmap width (default 512)
 *     --steal POLICY     none|same|similar|busiest (default similar)
 *     --simd LEVEL       scalar|avx2|avx512|auto — heatmap kernel
 *                        dispatch (default: SCHEDTASK_SIMD or auto);
 *                        the choice is logged once at startup
 *     --seed N           master seed (default 1)
 *     --jobs N           worker threads for --compare (default:
 *                        SCHEDTASK_JOBS or the hardware concurrency)
 *     --stats            print the full stats dump
 *     --json             print the stats dump as JSON
 *     --viz              print per-core utilization bars and
 *                        (SchedTask) the allocation table
 *     --trace [FILE]     write a Chrome trace-event file of the
 *                        measured epochs (default
 *                        schedtask.trace.json); open in Perfetto
 *     --trace-jsonl FILE write epoch telemetry as JSON Lines
 *     --trace-dir DIR    with --compare: per-run trace files under
 *                        DIR (one pair per run label)
 *     --sf-trace [TID]   print a SuperFunction trace excerpt
 *     --compare          also run the Linux baseline and print deltas
 *     --help
 *
 * Invalid numeric flag values (e.g. "--cores xyz") are rejected
 * with exit code 2 instead of being silently read as 0.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "common/parse_num.hh"
#include "common/simd.hh"
#include "core/schedtask_sched.hh"
#include "sched/registry.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep.hh"
#include "harness/trace_export.hh"
#include "harness/visualize.hh"
#include "sim/machine.hh"
#include "sim/sf_trace.hh"
#include "stats/stat_set.hh"
#include "stats/table.hh"

using namespace schedtask;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "schedtask-sim: run one benchmark under one scheduling "
        "technique\n\n"
        "  --benchmark NAME   one of the 8 paper benchmarks "
        "(default Apache)\n"
        "  --bag NAME         multi-programmed bag MPW-A..MPW-F\n"
        "  --technique SPEC   NAME[:key=val,...], any registered "
        "technique\n"
        "                     (see --list-techniques; default "
        "SchedTask)\n"
        "  --list-techniques  print registered techniques and their\n"
        "                     option keys, sorted, and exit\n"
        "  --cores N          baseline cores (default 32)\n"
        "  --scale X          workload scale (default 2.0)\n"
        "  --warmup N         warmup epochs (default 4)\n"
        "  --measure N        measured epochs (default 6)\n"
        "  --fast             shortcut for --warmup 1 --measure 2\n"
        "  --heatmap-bits N   Page-heatmap width (default 512)\n"
        "  --steal POLICY     none|same|similar|busiest\n"
        "  --simd LEVEL       scalar|avx2|avx512|auto heatmap kernel\n"
        "                     dispatch (default: SCHEDTASK_SIMD or "
        "auto)\n"
        "  --seed N           master seed (default 1)\n"
        "  --jobs N           worker threads for --compare (default:\n"
        "                     SCHEDTASK_JOBS or the hardware "
        "concurrency)\n"
        "  --stats            print the full stats dump\n"
        "  --json             print the stats dump as JSON\n"
        "  --viz              print per-core utilization bars and\n"
        "                     (SchedTask) the allocation table\n"
        "  --trace [FILE]     write a Chrome trace-event file of the\n"
        "                     measured epochs (default\n"
        "                     schedtask.trace.json); open in Perfetto\n"
        "  --trace-jsonl FILE write epoch telemetry as JSON Lines\n"
        "  --trace-dir DIR    with --compare: per-run traces in DIR\n"
        "  --sf-trace [TID]   print a SuperFunction trace excerpt\n"
        "  --compare          also run the Linux baseline\n");
    std::exit(code);
}

/**
 * Parse and validate "--technique NAME[:key=val,...]" against the
 * registry. Unknown names exit 2 listing the registered techniques;
 * grammar errors and unknown option keys exit 2 with the registry's
 * diagnostic. Option *values* are validated when the scheduler is
 * built (see probeTechnique()).
 */
TechniqueSpec
parseTechniqueArg(const std::string &text)
{
    try {
        TechniqueSpec spec = parseTechniqueSpec(text);
        const SchedulerRegistry &reg = SchedulerRegistry::instance();
        const SchedulerInfo *info = reg.find(spec.name);
        if (info == nullptr) {
            std::string names;
            for (const std::string &name : reg.names())
                names += names.empty() ? name : ", " + name;
            std::fprintf(stderr,
                         "schedtask-sim: unknown technique '%s'\n"
                         "registered techniques: %s\n",
                         spec.name.c_str(), names.c_str());
            std::exit(2);
        }
        spec.name = info->name; // canonical display casing
        reg.validateOptions(*info, spec.options);
        return spec;
    } catch (const SchedulerOptionError &e) {
        std::fprintf(stderr, "schedtask-sim: %s\n", e.what());
        std::exit(2);
    }
}

/** Build-and-discard the scheduler so malformed option values are
 *  reported with exit 2 before any simulation starts. */
void
probeTechnique(const TechniqueSpec &spec, const SchedTaskParams &st)
{
    try {
        (void)makeScheduler(spec, st);
    } catch (const SchedulerOptionError &e) {
        std::fprintf(stderr, "schedtask-sim: %s\n", e.what());
        std::exit(2);
    }
}

/** --list-techniques: names + option keys, deterministically
 *  sorted (registry names are sorted; option keys sorted at
 *  registration). */
[[noreturn]] void
listTechniques()
{
    const SchedulerRegistry &reg = SchedulerRegistry::instance();
    std::printf("registered techniques:\n");
    for (const std::string &name : reg.names()) {
        const SchedulerInfo *info = reg.find(name);
        std::printf("  %-18s %s%s\n", name.c_str(),
                    info->description.c_str(),
                    info->isBaseline ? " [baseline]" : "");
        for (const SchedulerOptionSpec &opt : info->options)
            std::printf("    %-18s %s\n", opt.key.c_str(),
                        opt.help.c_str());
    }
    std::printf("universal options (any technique):\n");
    for (const SchedulerOptionSpec &opt :
         SchedulerRegistry::universalOptions())
        std::printf("    %-18s %s\n", opt.key.c_str(),
                    opt.help.c_str());
    std::exit(0);
}

/** Strictly parsed unsigned flag value; exits 2 on bad input. */
std::uint64_t
requireUnsigned(const char *flag, const char *text, std::uint64_t min)
{
    const std::optional<std::uint64_t> value = parseUnsigned(text);
    if (!value || *value < min) {
        std::fprintf(stderr,
                     "schedtask-sim: invalid value '%s' for %s "
                     "(expected an unsigned integer >= %llu)\n",
                     text, flag,
                     static_cast<unsigned long long>(min));
        std::exit(2);
    }
    return *value;
}

/** Strictly parsed positive double flag value; exits 2 on bad input. */
double
requirePositiveDouble(const char *flag, const char *text)
{
    const std::optional<double> value = parseDouble(text);
    if (!value || *value <= 0.0) {
        std::fprintf(stderr,
                     "schedtask-sim: invalid value '%s' for %s "
                     "(expected a number > 0)\n",
                     text, flag);
        std::exit(2);
    }
    return *value;
}

/** The headline-metrics table shared by both run paths. */
TextTable
headlineTable(const SimMetrics &m, unsigned num_cores,
              unsigned num_threads, double freq_ghz)
{
    TextTable table({"metric", "value"});
    table.addRow({"cores", std::to_string(num_cores)});
    table.addRow({"threads", std::to_string(num_threads)});
    table.addRow({"IPC/core", TextTable::num(m.ipc(num_cores), 3)});
    table.addRow({"Ginsts/s",
                  TextTable::num(m.instThroughput(freq_ghz) / 1e9,
                                 2)});
    table.addRow({"app events/s (x1e6)",
                  TextTable::num(
                      m.appEventsPerSecond(freq_ghz) / 1e6, 2)});
    table.addRow({"idle (%)",
                  TextTable::num(m.idleFraction(num_cores) * 100.0)});
    table.addRow({"migrations/1e9 insts",
                  TextTable::num(
                      m.instsRetired == 0
                          ? 0.0
                          : 1e9 * static_cast<double>(m.migrations)
                              / static_cast<double>(m.instsRetired),
                      0)});
    return table;
}

StealPolicy
parseSteal(const std::string &name)
{
    if (name == "none")
        return StealPolicy::None;
    if (name == "same")
        return StealPolicy::SameOnly;
    if (name == "similar")
        return StealPolicy::SameAndSimilar;
    if (name == "busiest")
        return StealPolicy::BusiestFirst;
    std::fprintf(stderr, "unknown steal policy: %s\n", name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string benchmark = "Apache";
    std::optional<std::string> bag;
    TechniqueSpec spec; // defaults to SchedTask, no options
    unsigned cores = 32;
    double scale = 2.0;
    unsigned warmup = 4, measure = 6;
    unsigned heatmap_bits = 512;
    StealPolicy steal = StealPolicy::SameAndSimilar;
    std::uint64_t seed = 1;
    unsigned jobs = 0;
    bool want_stats = false, want_compare = false;
    bool want_json = false, want_viz = false;
    std::optional<ThreadId> sf_trace_tid;
    bool want_sf_trace = false;
    std::optional<std::string> trace_file;
    std::optional<std::string> trace_jsonl_file;
    std::string trace_dir;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--benchmark") {
            benchmark = next();
        } else if (arg == "--bag") {
            bag = next();
        } else if (arg == "--technique") {
            spec = parseTechniqueArg(next());
        } else if (arg == "--list-techniques") {
            listTechniques();
        } else if (arg == "--cores") {
            cores = static_cast<unsigned>(
                requireUnsigned("--cores", next(), 1));
        } else if (arg == "--scale") {
            scale = requirePositiveDouble("--scale", next());
        } else if (arg == "--warmup") {
            warmup = static_cast<unsigned>(
                requireUnsigned("--warmup", next(), 0));
        } else if (arg == "--measure") {
            measure = static_cast<unsigned>(
                requireUnsigned("--measure", next(), 1));
        } else if (arg == "--fast") {
            warmup = 1;
            measure = 2;
        } else if (arg == "--heatmap-bits") {
            heatmap_bits = static_cast<unsigned>(
                requireUnsigned("--heatmap-bits", next(), 1));
        } else if (arg == "--steal") {
            steal = parseSteal(next());
        } else if (arg == "--simd") {
            const char *text = next();
            const std::optional<simd::IsaLevel> level =
                simd::parseLevel(text);
            if (!level) {
                std::fprintf(stderr,
                             "schedtask-sim: invalid value '%s' for "
                             "--simd (expected "
                             "scalar|avx2|avx512|auto)\n",
                             text);
                std::exit(2);
            }
            if (!simd::select(*level)) {
                std::fprintf(stderr,
                             "schedtask-sim: --simd %s is not "
                             "supported by this CPU\n",
                             text);
                std::exit(2);
            }
        } else if (arg == "--seed") {
            seed = requireUnsigned("--seed", next(), 0);
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                requireUnsigned("--jobs", next(), 1));
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--json") {
            want_json = true;
        } else if (arg == "--viz") {
            want_viz = true;
        } else if (arg == "--compare") {
            want_compare = true;
        } else if (arg == "--trace") {
            trace_file = "schedtask.trace.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                trace_file = argv[++i];
        } else if (arg == "--trace-jsonl") {
            trace_jsonl_file = next();
        } else if (arg == "--trace-dir") {
            trace_dir = next();
        } else if (arg == "--sf-trace") {
            want_sf_trace = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                const std::uint64_t tid = requireUnsigned(
                    "--sf-trace", argv[++i], 0);
                sf_trace_tid = static_cast<ThreadId>(tid);
            }
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(2);
        }
    }

    // Resolving the level also applies (and validates) any
    // SCHEDTASK_SIMD environment override. Logged to stderr so runs
    // captured for bit-exactness comparisons stay clean on stdout.
    std::fprintf(stderr, "schedtask-sim: simd dispatch %s\n",
                 simd::levelName(simd::activeLevel()));

    ExperimentConfig cfg;
    cfg.parts = bag ? Workload::bagParts(*bag)
                    : std::vector<WorkloadPart>{{benchmark, scale}};
    cfg.baselineCores = cores;
    cfg.warmupEpochs = warmup;
    cfg.measureEpochs = measure;
    cfg.machine.heatmapBits = heatmap_bits;
    cfg.machine.seed = seed;
    cfg.schedTask.stealPolicy = steal;

    // Surface malformed option *values* (keys were checked at parse
    // time) as a usage error before any simulation starts.
    probeTechnique(spec, cfg.schedTask);
    const bool is_baseline =
        SchedulerRegistry::instance().isBaseline(spec.name);

    const std::string run_name = spec.str();
    const std::string title =
        run_name + " on " + (bag ? *bag : benchmark);
    const bool wants_trace_files =
        trace_file.has_value() || trace_jsonl_file.has_value();
    const bool needs_machine = want_stats || want_json || want_viz
        || want_sf_trace || wants_trace_files;

    if (!needs_machine) {
        // No stats/viz/trace attachments requested: go through the
        // sweep API, so --compare runs the Linux baseline and the
        // technique on concurrent worker threads (--jobs or
        // SCHEDTASK_JOBS; both runs still see --seed verbatim).
        // --trace-dir writes one trace-file pair per run label.
        Sweep sweep;
        sweep.deriveSeeds(false);
        if (want_compare && !is_baseline)
            sweep.addComparison("run", run_name, cfg, spec);
        else
            sweep.add("run", run_name, cfg, spec);
        SweepOptions opts;
        opts.jobs = jobs;
        opts.progress = false;
        opts.traceDir = trace_dir;
        const SweepResults results = SweepRunner(opts).run(sweep);
        const RunResult &r = results.at("run", run_name);

        printHeader(title);
        std::printf("%s\n",
                    headlineTable(r.metrics, r.numCores,
                                  r.numThreads, r.freqGhz)
                        .render()
                        .c_str());
        if (want_compare && !is_baseline) {
            const RunResult &base =
                results.at(baselineLabelFor("run", cfg));
            std::printf("vs Linux baseline: throughput %+0.1f%%, "
                        "app performance %+0.1f%%\n\n",
                        percentChange(base.instThroughput(),
                                      r.instThroughput()),
                        percentChange(base.appPerformance(),
                                      r.appPerformance()));
        }
        if (!trace_dir.empty()) {
            std::printf("epoch traces written under %s/\n",
                        trace_dir.c_str());
        }
        return 0;
    }

    // Build the run by hand so stats/trace can be attached.
    BenchmarkSuite suite;
    Workload workload =
        Workload::build(suite, cfg.parts, cfg.baselineCores);
    auto sched = makeScheduler(spec, cfg.schedTask);
    MachineParams mp = cfg.machine;
    mp.numCores = sched->coresRequired(cfg.baselineCores);
    sched->configureMachine(mp);
    mp.trace = wants_trace_files;
    Machine machine(mp, cfg.hierarchy, suite, workload, *sched);

    machine.run(static_cast<Cycles>(warmup) * mp.epochCycles);
    machine.resetStats();
    SfTracer tracer(1 << 18);
    if (want_sf_trace)
        machine.attachTracer(&tracer);
    machine.run(static_cast<Cycles>(measure) * mp.epochCycles);

    const SimMetrics m = machine.metricsSnapshot();
    printHeader(title);
    std::printf("%s\n",
                headlineTable(
                    m, mp.numCores,
                    static_cast<unsigned>(machine.threads().size()),
                    mp.coreFrequencyGHz)
                    .render()
                    .c_str());

    if (want_compare && !is_baseline) {
        const RunResult base = runOnce(cfg, Technique::Linux);
        const double dthr = percentChange(
            base.instThroughput(),
            m.instThroughput(mp.coreFrequencyGHz));
        const double dapp = percentChange(
            base.appPerformance(),
            m.appEventsPerSecond(mp.coreFrequencyGHz));
        std::printf("vs Linux baseline: throughput %+0.1f%%, "
                    "app performance %+0.1f%%\n\n",
                    dthr, dapp);
    }

    if (want_stats || want_json) {
        StatSet stats;
        machine.exportStats(stats);
        if (want_stats)
            std::printf("%s\n", stats.dump().c_str());
        if (want_json)
            std::printf("%s", stats.dumpJson().c_str());
    }

    if (want_viz) {
        std::printf("%s\n",
                    utilizationBars(m, mp.numCores).c_str());
        if (const auto *st =
                dynamic_cast<const SchedTaskScheduler *>(
                    sched.get())) {
            std::printf("allocation table:\n%s\n",
                        allocationView(*st).c_str());
        }
    }

    if (wants_trace_files) {
        try {
            if (trace_file) {
                writeTextFile(*trace_file,
                              chromeTraceJson(m.epochSamples,
                                              mp.coreFrequencyGHz));
                std::printf("chrome trace written to %s "
                            "(open in ui.perfetto.dev)\n",
                            trace_file->c_str());
            }
            if (trace_jsonl_file) {
                writeTextFile(*trace_jsonl_file,
                              epochTraceJsonl(m.epochSamples));
                std::printf("epoch telemetry written to %s\n",
                            trace_jsonl_file->c_str());
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "schedtask-sim: %s\n", e.what());
            return 1;
        }
    }

    if (want_sf_trace) {
        std::printf("%s\n",
                    tracer
                        .render(sf_trace_tid.value_or(invalidThread),
                                60)
                        .c_str());
    }
    return 0;
}
